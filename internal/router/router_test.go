package router

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/community"
	"repro/internal/nisqbench"
	"repro/internal/partition"
)

// routeAndCheck routes and validates the schedule, returning it.
func routeAndCheck(t *testing.T, d *arch.Device, progs []*circuit.Circuit, initial [][]int, opts Options) *Schedule {
	t.Helper()
	s, err := Route(d, progs, initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(progs, initial); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRouteAlreadyCompliant(t *testing.T) {
	d := arch.Linear(3, 0.02, 0.02)
	p := circuit.New("p", 2)
	p.H(0).CX(0, 1).MeasureAll()
	s := routeAndCheck(t, d, []*circuit.Circuit{p}, [][]int{{0, 1}}, DefaultOptions())
	if s.SwapCount != 0 {
		t.Fatalf("swaps = %d, want 0", s.SwapCount)
	}
	if len(s.Measurements) != 2 {
		t.Fatalf("measurements = %d", len(s.Measurements))
	}
}

func TestRouteNeedsOneSwap(t *testing.T) {
	// cx between ends of a 3-qubit path: one SWAP suffices.
	d := arch.Linear(3, 0.02, 0.02)
	p := circuit.New("p", 2)
	p.CX(0, 1)
	s := routeAndCheck(t, d, []*circuit.Circuit{p}, [][]int{{0, 2}}, DefaultOptions())
	if s.SwapCount != 1 {
		t.Fatalf("swaps = %d, want 1", s.SwapCount)
	}
}

func TestRouteMeasurementTracksQubit(t *testing.T) {
	d := arch.Linear(3, 0.02, 0.02)
	p := circuit.New("p", 2)
	p.CX(0, 1).Measure(0).Measure(1)
	s := routeAndCheck(t, d, []*circuit.Circuit{p}, [][]int{{0, 2}}, DefaultOptions())
	// After routing, each logical qubit's measurement must be on its
	// final physical position (Validate checks internal consistency;
	// here check measurements cover both logicals).
	got := map[int]bool{}
	for _, m := range s.Measurements {
		got[m.Logical] = true
	}
	if !got[0] || !got[1] {
		t.Fatalf("measurements = %+v", s.Measurements)
	}
}

// TestFigure6InterProgramSwap reproduces the paper's Figure 6: two
// 2-program workloads on a 6-qubit chip where X-SWAP needs a single
// inter-program SWAP while intra-only routing needs two.
//
// Chip (2x3 grid):   1 - 2 - 3
//
//	|   |   |
//	4 - 5 - 6      (we use 0-based 0..5)
//
// P1 on {q1,q2,q3} = phys {0,1,2}, P2 on {q4,q5,q6} = phys {3,4,5}.
// P1: cx(a,b); cx(b,c); cx(a,c)  -> g3 = cx(a,c) blocked (0 and 2 apart)
// P2: cx(d,e); cx(e,f); cx(d,f)  -> g6 = cx(d,f) blocked
func figure6() (*arch.Device, []*circuit.Circuit, [][]int) {
	d := arch.Grid(2, 3, 0.02, 0.02)
	p1 := circuit.New("P1", 3)
	p1.CX(0, 1).CX(1, 2).CX(0, 2)
	p2 := circuit.New("P2", 3)
	p2.CX(0, 1).CX(1, 2).CX(0, 2)
	// P1 left-to-right on the top row, P2 on the bottom row.
	return d, []*circuit.Circuit{p1, p2}, [][]int{{0, 1, 2}, {3, 4, 5}}
}

func TestFigure6InterProgramSwap(t *testing.T) {
	d, progs, initial := figure6()
	intra := routeAndCheck(t, d, progs, initial, DefaultOptions())
	xswap := routeAndCheck(t, d, progs, initial, XSWAPOptions())
	if intra.InterSwapCount != 0 {
		t.Fatalf("intra-only routing performed %d inter-program swaps", intra.InterSwapCount)
	}
	if xswap.SwapCount > intra.SwapCount {
		t.Fatalf("X-SWAP used %d swaps, intra-only %d; X-SWAP must not be worse", xswap.SwapCount, intra.SwapCount)
	}
	if intra.SwapCount < 2 {
		t.Fatalf("intra-only swaps = %d, want >= 2 (one per program)", intra.SwapCount)
	}
	if xswap.SwapCount > 1 && xswap.InterSwapCount == 0 {
		t.Logf("note: X-SWAP solved with %d intra swaps", xswap.SwapCount)
	}
}

// TestFigure10Shortcut reproduces Figure 10: on a 3x3 grid, an
// inter-program SWAP reaches a blocked CNOT in 1 SWAP where intra-only
// routing needs 3.
//
// Grid phys:  0 1 2
//
//	3 4 5
//	6 7 8
//
// P1 holds the U-shaped region {0, 3, 6, 7, 8, 5, 2}; its blocked CNOT
// endpoints sit at phys 0 and 2, whose only intra-region path is the
// 6-hop walk around the U, while the global shortest path (through P2's
// territory at phys 1) is 2 hops: one inter-program SWAP suffices.
func TestFigure10Shortcut(t *testing.T) {
	d := arch.Grid(3, 3, 0.02, 0.02)
	p1 := circuit.New("P1", 7)
	p1.CX(0, 6) // logical 0 at phys 0, logical 6 at phys 2: blocked
	p2 := circuit.New("P2", 2)
	p2.CX(0, 1) // at phys 1,4: compliant immediately
	initial := [][]int{{0, 3, 6, 7, 8, 5, 2}, {1, 4}}
	intra := routeAndCheck(t, d, []*circuit.Circuit{p1, p2}, initial, DefaultOptions())
	xswap := routeAndCheck(t, d, []*circuit.Circuit{p1, p2}, initial, XSWAPOptions())
	if xswap.SwapCount >= intra.SwapCount {
		t.Fatalf("X-SWAP swaps = %d, intra = %d; shortcut must win", xswap.SwapCount, intra.SwapCount)
	}
	if xswap.InterSwapCount == 0 {
		t.Fatal("X-SWAP must use an inter-program swap for the shortcut")
	}
}

func TestRouteTwoProgramsOnIBMQ16(t *testing.T) {
	d := arch.IBMQ16(0)
	tree := community.Build(d, 0.95)
	progs := []*circuit.Circuit{
		nisqbench.MustGet("bv_n4"),
		nisqbench.MustGet("toffoli_3"),
	}
	res, err := partition.CDAP(d, tree, progs)
	if err != nil {
		t.Fatal(err)
	}
	initial := [][]int{res.Assignments[0].InitialMapping, res.Assignments[1].InitialMapping}
	for _, opts := range []Options{DefaultOptions(), XSWAPOptions()} {
		s := routeAndCheck(t, d, progs, initial, opts)
		if len(s.Measurements) != 7 {
			t.Fatalf("measurements = %d, want 7", len(s.Measurements))
		}
	}
}

func TestRouteLargeWorkloadOnIBMQ50(t *testing.T) {
	d := arch.IBMQ50(0)
	tree := community.Build(d, 0.40)
	progs := []*circuit.Circuit{
		nisqbench.MustGet("aj-e11_165"),
		nisqbench.MustGet("4gt4-v0_72"),
		nisqbench.MustGet("ham7_104"),
		nisqbench.MustGet("sys6-v0_111"),
	}
	res, err := partition.CDAP(d, tree, progs)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([][]int, len(progs))
	for i, a := range res.Assignments {
		initial[i] = a.InitialMapping
	}
	s := routeAndCheck(t, d, progs, initial, XSWAPOptions())
	if s.CNOTCount() == 0 || s.Depth() == 0 {
		t.Fatal("schedule must have gates")
	}
}

func TestRouteErrors(t *testing.T) {
	d := arch.Linear(3, 0.02, 0.02)
	p := circuit.New("p", 2)
	p.CX(0, 1)
	if _, err := Route(d, []*circuit.Circuit{p}, nil, DefaultOptions()); err == nil {
		t.Fatal("mapping count mismatch must error")
	}
	if _, err := Route(d, []*circuit.Circuit{p}, [][]int{{0}}, DefaultOptions()); err == nil {
		t.Fatal("short mapping must error")
	}
	if _, err := Route(d, []*circuit.Circuit{p}, [][]int{{0, 9}}, DefaultOptions()); err == nil {
		t.Fatal("out-of-range mapping must error")
	}
	if _, err := Route(d, []*circuit.Circuit{p, p}, [][]int{{0, 1}, {1, 2}}, DefaultOptions()); err == nil {
		t.Fatal("overlapping mappings must error")
	}
}

func TestScheduleCNOTAndDepthAccounting(t *testing.T) {
	d := arch.Linear(3, 0.02, 0.02)
	p := circuit.New("p", 2)
	p.CX(0, 1)
	s := routeAndCheck(t, d, []*circuit.Circuit{p}, [][]int{{0, 2}}, DefaultOptions())
	// 1 swap (3 CNOTs) + 1 cx = 4 CNOTs.
	if got := s.CNOTCount(); got != 4 {
		t.Fatalf("CNOTs = %d, want 4", got)
	}
	if got := s.Depth(); got != 4 {
		t.Fatalf("depth = %d, want 4", got)
	}
}

func TestDeterminismWithSameSeed(t *testing.T) {
	d := arch.IBMQ16(0)
	p := nisqbench.MustGet("alu-v0_27")
	m := RandomInitialMapping(d, p, 7)
	s1, err := RouteSingle(d, p, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RouteSingle(d, p, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s1.SwapCount != s2.SwapCount || len(s1.Ops) != len(s2.Ops) {
		t.Fatal("same seed must give identical schedules")
	}
}

func TestReverseTraversalImprovesOrMatches(t *testing.T) {
	d := arch.IBMQ16(1)
	p := nisqbench.MustGet("3_17_13")
	opts := DefaultOptions()
	start := RandomInitialMapping(d, p, 42)
	before, err := RouteSingle(d, stripMeasures(p), start, opts)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := ReverseTraversal(d, p, start, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	after, err := RouteSingle(d, stripMeasures(p), refined, opts)
	if err != nil {
		t.Fatal(err)
	}
	if after.SwapCount > before.SwapCount+2 {
		t.Fatalf("reverse traversal regressed swaps: %d -> %d", before.SwapCount, after.SwapCount)
	}
}

func TestSABRECompile(t *testing.T) {
	d := arch.IBMQ16(0)
	p := nisqbench.MustGet("4mod5-v1_22")
	s, err := SABRECompile(d, p, DefaultOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Measurements) != p.NumQubits {
		t.Fatalf("measurements = %d", len(s.Measurements))
	}
}

func TestNoisePenaltyAvoidsWeakLink(t *testing.T) {
	// Square: 0-1, 1-3, 0-2, 2-3. Logical pair at 0 and 3; both 2-hop
	// routes; one route's link is terrible. The noise-aware router
	// should swap over the good side.
	d := arch.Grid(2, 2, 0.02, 0.02)
	// Edges: (0,1),(0,2),(1,3),(2,3). Make 0-1 and 1-3 awful.
	for _, e := range d.Coupling.Edges() {
		if e.U == 1 || e.V == 1 {
			d.CNOTErr[e] = 0.4
		}
	}
	p := circuit.New("p", 2)
	p.CX(0, 1)
	opts := DefaultOptions()
	opts.NoisePenalty = 5
	s := routeAndCheck(t, d, []*circuit.Circuit{p}, [][]int{{0, 3}}, opts)
	for _, op := range s.Ops {
		if op.IsSwap {
			a, b := op.Gate.Qubits[0], op.Gate.Qubits[1]
			if a == 1 || b == 1 {
				t.Fatalf("noise-aware route swapped across the weak qubit 1: %v", op.Gate)
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := arch.Linear(3, 0.02, 0.02)
	p := circuit.New("p", 2)
	p.CX(0, 1)
	s := routeAndCheck(t, d, []*circuit.Circuit{p}, [][]int{{0, 2}}, DefaultOptions())
	// Corrupt: retarget the cx op onto uncoupled qubits.
	for i := range s.Ops {
		if !s.Ops[i].IsSwap && s.Ops[i].Gate.IsCNOT() {
			s.Ops[i].Gate = circuit.Gate{Name: circuit.GateCX, Qubits: []int{0, 2}}
		}
	}
	if err := s.Validate([]*circuit.Circuit{p}, [][]int{{0, 2}}); err == nil {
		t.Fatal("Validate must reject op on uncoupled qubits")
	}
}

func TestXSWAPOnSingleProgramEqualsSABRE(t *testing.T) {
	// With one program there are no inter-program swaps; X-SWAP must
	// still terminate and produce a valid schedule.
	d := arch.IBMQ16(0)
	p := nisqbench.MustGet("mod5mils_65")
	m := RandomInitialMapping(d, p, 3)
	s := routeAndCheck(t, d, []*circuit.Circuit{p}, [][]int{m}, XSWAPOptions())
	if s.InterSwapCount != 0 {
		t.Fatalf("single program produced %d inter swaps", s.InterSwapCount)
	}
}
