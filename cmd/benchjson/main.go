// benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON record. Each invocation parses one benchmark
// run into a labelled group; -append merges the group into an existing
// file so a Makefile target can collect several runs (different
// packages require different `go test` invocations) into one document.
//
// Usage:
//
//	go test -bench . ./internal/sim | go run ./cmd/benchjson -o BENCH.json -label simulate
//	go test -bench Table2 .         | go run ./cmd/benchjson -o BENCH.json -label table2 -append
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one result line, e.g.
// "BenchmarkSimulateParallel-8  3  41532100 ns/op  1024 B/op  12 allocs/op".
type Benchmark struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. "jobs/s",
	// "p99_wait_s") keyed by unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Ratio is a derived metric: the ns/op of one benchmark divided by
// another's, e.g. a cold-vs-warm cache speedup.
type Ratio struct {
	Name        string  `json:"name"`
	Numerator   string  `json:"numerator"`
	Denominator string  `json:"denominator"`
	Value       float64 `json:"value"`
}

// Group is the output of a single `go test -bench` run.
type Group struct {
	Label      string      `json:"label"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Package    string      `json:"package,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Ratios     []Ratio     `json:"ratios,omitempty"`
}

// deriveRatio evaluates a "name=Num/Den" spec against the parsed
// benchmarks (names as emitted, without the Benchmark prefix or -procs
// suffix) and appends the derived entry to the group. Because subtest
// names themselves contain "/" (e.g. "PackedVsBooleanTableau/packed"),
// every split position is tried until both sides resolve to benchmarks
// from this run.
func deriveRatio(g *Group, spec string) error {
	name, expr, ok := strings.Cut(spec, "=")
	if !ok || !strings.Contains(expr, "/") {
		return fmt.Errorf("-ratio %q: want name=Numerator/Denominator", spec)
	}
	find := func(bench string) (float64, bool) {
		for _, b := range g.Benchmarks {
			if b.Name == bench {
				return b.NsPerOp, true
			}
		}
		return 0, false
	}
	for i := 0; i < len(expr); i++ {
		if expr[i] != '/' {
			continue
		}
		num, den := expr[:i], expr[i+1:]
		nv, nok := find(num)
		dv, dok := find(den)
		if !nok || !dok {
			continue
		}
		//lint:ignore floateq guarding literal division by zero, not comparing measurements
		if dv == 0 {
			return fmt.Errorf("-ratio %q: denominator %q has zero ns/op", spec, den)
		}
		g.Ratios = append(g.Ratios, Ratio{Name: name, Numerator: num, Denominator: den, Value: nv / dv})
		return nil
	}
	return fmt.Errorf("-ratio %q: no split of %q names two benchmarks in this run", spec, expr)
}

// Document is the whole JSON file: one group per bench invocation.
type Document struct {
	Groups []Group `json:"groups"`
}

func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	b := Benchmark{Name: strings.TrimPrefix(fields[0], "Benchmark"), Procs: 1}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			// Custom b.ReportMetric units pass through verbatim.
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[fields[i+1]] = v
		}
	}
	return b, b.NsPerOp > 0
}

func parse(r io.Reader, label string) (Group, error) {
	g := Group{Label: label, Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			g.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			g.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			g.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			g.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		default:
			if b, ok := parseBenchLine(line); ok {
				g.Benchmarks = append(g.Benchmarks, b)
			}
		}
	}
	return g, sc.Err()
}

func run(in io.Reader, out string, label string, appendMode bool, ratios []string) error {
	g, err := parse(in, label)
	if err != nil {
		return err
	}
	if len(g.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines found on stdin")
	}
	for _, spec := range ratios {
		if err := deriveRatio(&g, spec); err != nil {
			return err
		}
	}
	var doc Document
	if appendMode {
		data, err := os.ReadFile(out)
		if err != nil {
			return fmt.Errorf("-append: %w", err)
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("-append: parsing %s: %w", out, err)
		}
		// Re-running a labelled stage replaces its previous group.
		kept := doc.Groups[:0]
		for _, old := range doc.Groups {
			if old.Label != label {
				kept = append(kept, old)
			}
		}
		doc.Groups = kept
	}
	doc.Groups = append(doc.Groups, g)
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}

// benchKey identifies one benchmark across documents: group label plus
// the bench name and GOMAXPROCS suffix it ran under.
type benchKey struct {
	label string
	name  string
	procs int
}

func loadDoc(path string) (Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Document{}, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return Document{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return doc, nil
}

// fmtNs renders an ns/op value in a human unit.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3gus", ns/1e3)
	default:
		return fmt.Sprintf("%.3gns", ns)
	}
}

// compareDocs prints one line per benchmark with the new/old ns-per-op
// ratio and returns the number of regressions — benchmarks whose ratio
// exceeds threshold. Output follows the new document's group and bench
// order (then the old document's order for removed entries), so the
// report is deterministic. Benchmarks are matched by group label, name
// and procs; unmatched entries are reported as added/removed, never as
// failures.
func compareDocs(w io.Writer, oldDoc, newDoc Document, threshold float64) int {
	oldIdx := map[benchKey]Benchmark{}
	for _, g := range oldDoc.Groups {
		for _, b := range g.Benchmarks {
			oldIdx[benchKey{g.Label, b.Name, b.Procs}] = b
		}
	}
	matched := map[benchKey]bool{}
	compared, regressions, added := 0, 0, 0
	for _, g := range newDoc.Groups {
		for _, b := range g.Benchmarks {
			k := benchKey{g.Label, b.Name, b.Procs}
			ob, ok := oldIdx[k]
			if !ok {
				added++
				fmt.Fprintf(w, "added      %s/%s: %s\n", g.Label, b.Name, fmtNs(b.NsPerOp))
				continue
			}
			matched[k] = true
			if ob.NsPerOp <= 0 {
				fmt.Fprintf(w, "skipped    %s/%s: old ns/op is not positive\n", g.Label, b.Name)
				continue
			}
			compared++
			ratio := b.NsPerOp / ob.NsPerOp
			status := "ok        "
			switch {
			case ratio > threshold:
				status = "REGRESSION"
				regressions++
			case ratio < 1/threshold:
				status = "improved  "
			}
			fmt.Fprintf(w, "%s %s/%s: %s -> %s (x%.3f)\n", status, g.Label, b.Name, fmtNs(ob.NsPerOp), fmtNs(b.NsPerOp), ratio)
		}
	}
	removed := 0
	for _, g := range oldDoc.Groups {
		for _, b := range g.Benchmarks {
			if !matched[benchKey{g.Label, b.Name, b.Procs}] {
				removed++
				fmt.Fprintf(w, "removed    %s/%s\n", g.Label, b.Name)
			}
		}
	}
	fmt.Fprintf(w, "%d compared, %d regressions (threshold x%.2f), %d added, %d removed\n",
		compared, regressions, threshold, added, removed)
	return regressions
}

// ratioFlags collects repeated -ratio specs.
type ratioFlags []string

func (r *ratioFlags) String() string     { return strings.Join(*r, ",") }
func (r *ratioFlags) Set(s string) error { *r = append(*r, s); return nil }

func main() {
	out := flag.String("o", "BENCH.json", "output JSON file")
	label := flag.String("label", "bench", "label for this benchmark group")
	appendMode := flag.Bool("append", false, "merge into an existing output file instead of overwriting")
	compareMode := flag.Bool("compare", false, "compare two benchmark JSON files (old new) instead of parsing stdin; exits 1 on regression")
	threshold := flag.Float64("threshold", 1.25, "-compare regression threshold: fail when new/old ns-per-op exceeds this factor")
	var ratios ratioFlags
	flag.Var(&ratios, "ratio", "derived speedup entry name=Numerator/Denominator (repeatable; names without the Benchmark prefix)")
	flag.Parse()
	if *compareMode {
		args := flag.Args()
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare wants exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		if *threshold <= 1 {
			fmt.Fprintf(os.Stderr, "benchjson: -threshold %v must be > 1\n", *threshold)
			os.Exit(2)
		}
		oldDoc, err := loadDoc(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		newDoc, err := loadDoc(args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if compareDocs(os.Stdout, oldDoc, newDoc, *threshold) > 0 {
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, *out, *label, *appendMode, ratios); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
