// benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON record. Each invocation parses one benchmark
// run into a labelled group; -append merges the group into an existing
// file so a Makefile target can collect several runs (different
// packages require different `go test` invocations) into one document.
//
// Usage:
//
//	go test -bench . ./internal/sim | go run ./cmd/benchjson -o BENCH.json -label simulate
//	go test -bench Table2 .         | go run ./cmd/benchjson -o BENCH.json -label table2 -append
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one result line, e.g.
// "BenchmarkSimulateParallel-8  3  41532100 ns/op  1024 B/op  12 allocs/op".
type Benchmark struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. "jobs/s",
	// "p99_wait_s") keyed by unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Ratio is a derived metric: the ns/op of one benchmark divided by
// another's, e.g. a cold-vs-warm cache speedup.
type Ratio struct {
	Name        string  `json:"name"`
	Numerator   string  `json:"numerator"`
	Denominator string  `json:"denominator"`
	Value       float64 `json:"value"`
}

// Group is the output of a single `go test -bench` run.
type Group struct {
	Label      string      `json:"label"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Package    string      `json:"package,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Ratios     []Ratio     `json:"ratios,omitempty"`
}

// deriveRatio evaluates a "name=Num/Den" spec against the parsed
// benchmarks (names as emitted, without the Benchmark prefix or -procs
// suffix) and appends the derived entry to the group.
func deriveRatio(g *Group, spec string) error {
	name, expr, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("-ratio %q: want name=Numerator/Denominator", spec)
	}
	num, den, ok := strings.Cut(expr, "/")
	if !ok {
		return fmt.Errorf("-ratio %q: want name=Numerator/Denominator", spec)
	}
	find := func(bench string) (float64, error) {
		for _, b := range g.Benchmarks {
			if b.Name == bench {
				return b.NsPerOp, nil
			}
		}
		return 0, fmt.Errorf("-ratio %q: benchmark %q not in this run", spec, bench)
	}
	nv, err := find(num)
	if err != nil {
		return err
	}
	dv, err := find(den)
	if err != nil {
		return err
	}
	//lint:ignore floateq guarding literal division by zero, not comparing measurements
	if dv == 0 {
		return fmt.Errorf("-ratio %q: denominator %q has zero ns/op", spec, den)
	}
	g.Ratios = append(g.Ratios, Ratio{Name: name, Numerator: num, Denominator: den, Value: nv / dv})
	return nil
}

// Document is the whole JSON file: one group per bench invocation.
type Document struct {
	Groups []Group `json:"groups"`
}

func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	b := Benchmark{Name: strings.TrimPrefix(fields[0], "Benchmark"), Procs: 1}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			// Custom b.ReportMetric units pass through verbatim.
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[fields[i+1]] = v
		}
	}
	return b, b.NsPerOp > 0
}

func parse(r io.Reader, label string) (Group, error) {
	g := Group{Label: label, Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			g.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			g.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			g.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			g.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		default:
			if b, ok := parseBenchLine(line); ok {
				g.Benchmarks = append(g.Benchmarks, b)
			}
		}
	}
	return g, sc.Err()
}

func run(in io.Reader, out string, label string, appendMode bool, ratios []string) error {
	g, err := parse(in, label)
	if err != nil {
		return err
	}
	if len(g.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines found on stdin")
	}
	for _, spec := range ratios {
		if err := deriveRatio(&g, spec); err != nil {
			return err
		}
	}
	var doc Document
	if appendMode {
		data, err := os.ReadFile(out)
		if err != nil {
			return fmt.Errorf("-append: %w", err)
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("-append: parsing %s: %w", out, err)
		}
		// Re-running a labelled stage replaces its previous group.
		kept := doc.Groups[:0]
		for _, old := range doc.Groups {
			if old.Label != label {
				kept = append(kept, old)
			}
		}
		doc.Groups = kept
	}
	doc.Groups = append(doc.Groups, g)
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}

// ratioFlags collects repeated -ratio specs.
type ratioFlags []string

func (r *ratioFlags) String() string     { return strings.Join(*r, ",") }
func (r *ratioFlags) Set(s string) error { *r = append(*r, s); return nil }

func main() {
	out := flag.String("o", "BENCH.json", "output JSON file")
	label := flag.String("label", "bench", "label for this benchmark group")
	appendMode := flag.Bool("append", false, "merge into an existing output file instead of overwriting")
	var ratios ratioFlags
	flag.Var(&ratios, "ratio", "derived speedup entry name=Numerator/Denominator (repeatable; names without the Benchmark prefix)")
	flag.Parse()
	if err := run(os.Stdin, *out, *label, *appendMode, ratios); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
