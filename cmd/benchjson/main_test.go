package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Intel(R) Xeon(R)
BenchmarkSimulateSequential-8   	       3	 123456789 ns/op	    2048 B/op	      17 allocs/op
BenchmarkSimulateParallel-8     	       3	  41152263 ns/op
PASS
ok  	repro/internal/sim	1.234s
`

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkSimulateParallel-8   3   41152263 ns/op   1024 B/op   12 allocs/op")
	if !ok {
		t.Fatal("expected a parse")
	}
	if b.Name != "SimulateParallel" || b.Procs != 8 || b.Iterations != 3 {
		t.Fatalf("bad header fields: %+v", b)
	}
	if b.NsPerOp != 41152263 || b.BytesPerOp != 1024 || b.AllocsPerOp != 12 {
		t.Fatalf("bad metric fields: %+v", b)
	}
	for _, line := range []string{"PASS", "ok  repro 1.2s", "goos: linux", "Benchmark 3", "BenchmarkX notanint 5 ns/op"} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("line %q should not parse as a benchmark", line)
		}
	}
}

// TestParseBenchLineExtraMetrics: custom b.ReportMetric units land in
// Extra keyed by unit, alongside the standard fields.
func TestParseBenchLineExtraMetrics(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkFleet4ChipBalanced-8   2   51234567 ns/op   38.4 jobs/s   0.91 p99_wait_s")
	if !ok {
		t.Fatal("expected a parse")
	}
	if b.NsPerOp != 51234567 {
		t.Fatalf("ns/op = %v", b.NsPerOp)
	}
	if len(b.Extra) != 2 || b.Extra["jobs/s"] != 38.4 || b.Extra["p99_wait_s"] != 0.91 {
		t.Fatalf("extra metrics: %+v", b.Extra)
	}
	plain, ok := parseBenchLine("BenchmarkPlain-1 1 100 ns/op")
	if !ok || plain.Extra != nil {
		t.Fatalf("plain line should have no extras: %+v", plain.Extra)
	}
}

func TestRunWriteAndAppend(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(strings.NewReader(sampleBenchOutput), out, "simulate", false, nil); err != nil {
		t.Fatal(err)
	}
	second := "BenchmarkTable2-1 1 987654321 ns/op\n"
	if err := run(strings.NewReader(second), out, "table2", true, nil); err != nil {
		t.Fatal(err)
	}
	// Re-running a label replaces its group instead of duplicating it.
	if err := run(strings.NewReader(second), out, "table2", true, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Groups) != 2 {
		t.Fatalf("got %d groups, want 2: %+v", len(doc.Groups), doc.Groups)
	}
	if doc.Groups[0].Label != "simulate" || len(doc.Groups[0].Benchmarks) != 2 {
		t.Fatalf("bad simulate group: %+v", doc.Groups[0])
	}
	if doc.Groups[0].Goos != "linux" || doc.Groups[0].Package != "repro/internal/sim" {
		t.Fatalf("environment lines not captured: %+v", doc.Groups[0])
	}
	if doc.Groups[1].Label != "table2" || doc.Groups[1].Benchmarks[0].Name != "Table2" {
		t.Fatalf("bad table2 group: %+v", doc.Groups[1])
	}
}

const cacheBenchOutput = `goos: linux
BenchmarkCacheCompileCold-8   	      10	  50000000 ns/op
BenchmarkCacheCompileWarm-8   	  100000	      5000 ns/op
PASS
`

func TestRunDerivesRatios(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	specs := []string{"warm_speedup=CacheCompileCold/CacheCompileWarm"}
	if err := run(strings.NewReader(cacheBenchOutput), out, "cache", false, specs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	rs := doc.Groups[0].Ratios
	if len(rs) != 1 {
		t.Fatalf("got %d ratios, want 1: %+v", len(rs), rs)
	}
	r := rs[0]
	if r.Name != "warm_speedup" || r.Numerator != "CacheCompileCold" || r.Denominator != "CacheCompileWarm" {
		t.Fatalf("bad ratio fields: %+v", r)
	}
	if r.Value != 10000 {
		t.Fatalf("ratio value %v, want 10000", r.Value)
	}
}

func TestRunRatioErrors(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	for _, spec := range []string{
		"noequals",
		"name=NoSlash",
		"name=Missing/CacheCompileWarm",
		"name=CacheCompileCold/Missing",
	} {
		if err := run(strings.NewReader(cacheBenchOutput), out, "cache", false, []string{spec}); err == nil {
			t.Errorf("spec %q accepted, want error", spec)
		}
	}
}

// TestRunRatioSubtestNames: subtest benchmark names contain "/", so
// the Num/Den split must try each position.
func TestRunRatioSubtestNames(t *testing.T) {
	const subtestOutput = `goos: linux
BenchmarkPackedVsBooleanTableau/boolean-8   100   900000 ns/op
BenchmarkPackedVsBooleanTableau/packed-8   1000    90000 ns/op
PASS
`
	out := filepath.Join(t.TempDir(), "bench.json")
	specs := []string{"packed_speedup=PackedVsBooleanTableau/boolean/PackedVsBooleanTableau/packed"}
	if err := run(strings.NewReader(subtestOutput), out, "tableau", false, specs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	rs := doc.Groups[0].Ratios
	if len(rs) != 1 {
		t.Fatalf("got %d ratios, want 1: %+v", len(rs), rs)
	}
	r := rs[0]
	if r.Numerator != "PackedVsBooleanTableau/boolean" || r.Denominator != "PackedVsBooleanTableau/packed" {
		t.Fatalf("bad split: %+v", r)
	}
	if r.Value != 10 {
		t.Fatalf("ratio value %v, want 10", r.Value)
	}
}

func TestCompareDocsGolden(t *testing.T) {
	oldDoc, err := loadDoc(filepath.Join("testdata", "compare_old.json"))
	if err != nil {
		t.Fatal(err)
	}
	newDoc, err := loadDoc(filepath.Join("testdata", "compare_new.json"))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	regressions := compareDocs(&buf, oldDoc, newDoc, 1.25)
	if regressions != 1 {
		t.Fatalf("got %d regressions, want 1 (SimulateCliffordParallel)", regressions)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "compare_golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Fatalf("compare output differs from golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestCompareDocsThreshold: the regression verdict must follow the
// configured threshold, and identical documents never regress.
func TestCompareDocsThreshold(t *testing.T) {
	oldDoc, err := loadDoc(filepath.Join("testdata", "compare_old.json"))
	if err != nil {
		t.Fatal(err)
	}
	newDoc, err := loadDoc(filepath.Join("testdata", "compare_new.json"))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	// At a 1.5x threshold the 1.404x Clifford slowdown passes.
	if got := compareDocs(&buf, oldDoc, newDoc, 1.5); got != 0 {
		t.Fatalf("threshold 1.5: got %d regressions, want 0", got)
	}
	buf.Reset()
	// At 1.01x both the Clifford slowdown regresses; improvements never do.
	if got := compareDocs(&buf, oldDoc, newDoc, 1.01); got != 1 {
		t.Fatalf("threshold 1.01: got %d regressions, want 1", got)
	}
	buf.Reset()
	if got := compareDocs(&buf, oldDoc, oldDoc, 1.01); got != 0 {
		t.Fatalf("self-compare: got %d regressions, want 0", got)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(strings.NewReader("PASS\n"), out, "x", false, nil); err == nil {
		t.Fatal("expected an error for input with no benchmark lines")
	}
}
