package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected into a pipe and
// returns everything it printed. The experiment functions write to
// os.Stdout directly, so the smoke tests intercept it.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	ferr := f()
	w.Close()
	out := <-done
	os.Stdout = old
	if ferr != nil {
		t.Fatalf("experiment failed: %v\noutput so far:\n%s", ferr, out)
	}
	return out
}

// TestFig8Smoke regenerates the London dendrogram, the fastest and
// fully deterministic experiment: pure topology clustering, no
// simulation.
func TestFig8Smoke(t *testing.T) {
	out := captureStdout(t, fig8)
	for _, want := range []string{"Figure 8", "IBM Q London", "omega = 0.95"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig8 output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") < 5 {
		t.Errorf("fig8 output suspiciously short:\n%s", out)
	}
}

// TestFig8Golden: fig8 depends only on the fixed London coupling map,
// so repeated runs must be byte-identical.
func TestFig8Golden(t *testing.T) {
	first := captureStdout(t, fig8)
	second := captureStdout(t, fig8)
	if first != second {
		t.Fatalf("fig8 output differs across runs:\n--- first\n%s\n--- second\n%s", first, second)
	}
}
