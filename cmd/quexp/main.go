// Command quexp regenerates the tables and figures of the paper's
// evaluation section as text tables:
//
//	quexp -exp table2            # Table II: PST on IBMQ16
//	quexp -exp table3            # Table III: compilation overheads on IBMQ50
//	quexp -exp fig8              # Figure 8: IBM Q London dendrogram
//	quexp -exp fig9              # Figure 9: omega sweep + knee (both chips)
//	quexp -exp fig14             # Figure 14: scheduler PST / TRF
//	quexp -exp crosstalk         # SRB-matrix-aware vs blind co-location
//	quexp -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	qucloud "repro"
	"repro/internal/arch"
	"repro/internal/community"
	"repro/internal/pool"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table2, table3, fig8, fig9, fig14, scale, clifford, staleness, crosstalk, all")
		seed     = flag.Int64("seed", 0, "calibration seed")
		trials   = flag.Int("trials", 2000, "Monte-Carlo trials per PST estimate")
		days     = flag.Int("days", 21, "calibration days for the fig9 sweep")
		parallel = flag.Int("parallel", 0, "worker goroutines for compile/simulate fan-out (0 = GOMAXPROCS, 1 = sequential); results are identical at every setting")
	)
	flag.Parse()
	if *parallel > 0 {
		pool.SetDefault(*parallel)
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "quexp %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("table2", func() error { return table2(*seed, *trials) })
	run("table3", func() error { return table3(*seed) })
	run("fig8", func() error { return fig8() })
	run("fig9", func() error { return fig9(*seed, *days) })
	run("fig14", func() error { return fig14(*seed, *trials) })
	run("scale", func() error { return scale(*seed) })
	run("clifford", func() error { return clifford(*seed, *trials) })
	run("staleness", func() error { return staleness(*seed) })
	run("crosstalk", func() error { return crosstalk(*seed, *trials) })
}

func crosstalk(seed int64, trials int) error {
	fmt.Printf("== Extension: crosstalk-aware co-location on adversarial IBMQ16 (day %d, %d trials)\n\n", seed, trials)
	rows, err := qucloud.RunCrosstalkAware(seed, trials)
	if err != nil {
		return err
	}
	fmt.Printf("%-40s %10s %10s %8s %9s %9s\n", "mix", "aware(%)", "blind(%)", "delta", "hostileA", "hostileB")
	var sumA, sumB float64
	for _, r := range rows {
		fmt.Printf("%-40s %10.1f %10.1f %+8.1f %9d %9d\n", strings.Join(r.Programs, "+"), r.AwarePST, r.BlindPST, r.Delta(), r.AwareHostile, r.BlindHostile)
		sumA += r.AwarePST
		sumB += r.BlindPST
	}
	n := float64(len(rows))
	fmt.Printf("%-40s %10.1f %10.1f %+8.1f\n", "mean", sumA/n, sumB/n, (sumA-sumB)/n)
	fmt.Println()
	return nil
}

func clifford(seed int64, trials int) error {
	fmt.Printf("== Extension: exact per-program PST on IBMQ50 (Clifford workload, %d trials)\n\n", trials)
	rows, err := qucloud.RunCliffordFidelity(seed, trials)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %8s %8s %8s | per-program PST (%%)\n", "strategy", "avg PST", "CNOTs", "depth")
	for _, r := range rows {
		fmt.Printf("%-12s %8.1f %8d %8d |", r.Strategy, r.Avg, r.CNOTs, r.Depth)
		for _, p := range r.PST {
			fmt.Printf(" %5.1f", p)
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

func staleness(seed int64) error {
	fmt.Println("== Extension: hierarchy-tree staleness under calibration drift (8% daily)")
	ratios, err := qucloud.RunTreeStaleness(seed, 8, 0.08)
	if err != nil {
		return err
	}
	fmt.Println()
	for day, r := range ratios {
		fmt.Printf("  tree %d day(s) old: EPST ratio vs fresh tree = %.4f\n", day+1, r)
	}
	fmt.Println()
	return nil
}

func scale(seed int64) error {
	fmt.Printf("== Scalability: 3_17_13 + alu-v0_27 across chip sizes (day %d)\n\n", seed)
	rows, err := qucloud.RunScale(seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %6s", "chip", "qubits")
	for _, s := range qucloud.ScaleStrategies {
		fmt.Printf(" | %s (CNOTs/depth/ms)", s)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-10s %6d", r.Device, r.Qubits)
		for _, s := range qucloud.ScaleStrategies {
			fmt.Printf(" | %5d/%-5d %8.1fms   ", r.CNOTs[s], r.Depth[s], r.CompileMS[s])
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

func table2(seed int64, trials int) error {
	fmt.Printf("== Table II: PST (%%) of two-program workloads on IBMQ16 (calibration day %d, %d trials)\n\n", seed, trials)
	rows, err := qucloud.RunTable2(seed, trials)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-14s", "W1", "W2")
	for _, s := range qucloud.Strategies {
		fmt.Printf(" | %-11s", s)
	}
	fmt.Println()
	sums := map[qucloud.Strategy][2]float64{} // tiny, small
	for i, r := range rows {
		fmt.Printf("%-10s %-14s", r.W1, r.W2)
		for _, s := range qucloud.Strategies {
			fmt.Printf(" | %4.1f %4.1f ", r.PST[s][0], r.PST[s][1])
			v := sums[s]
			if i < 5 {
				v[0] += r.Avg(s) / 5
			} else {
				v[1] += r.Avg(s) / 5
			}
			sums[s] = v
		}
		fmt.Println()
		if i == 4 || i == 9 {
			label := "tiny avg"
			idx := 0
			if i == 9 {
				label = "small avg"
				idx = 1
			}
			fmt.Printf("%-25s", label)
			for _, s := range qucloud.Strategies {
				fmt.Printf(" |   %5.1f   ", sums[s][idx])
			}
			fmt.Println()
		}
	}
	fmt.Println()
	return nil
}

func table3(seed int64) error {
	fmt.Printf("== Table III: compilation overheads of 4-program workloads on IBMQ50 (calibration day %d)\n\n", seed)
	rows, err := qucloud.RunTable3(seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s", "Mix")
	for _, s := range qucloud.Table3Strategies {
		fmt.Printf(" | %-12s", s)
	}
	fmt.Println("   (CNOTs/depth)")
	tot := map[qucloud.Strategy][2]int{}
	for _, r := range rows {
		fmt.Printf("%-8s", r.Mix)
		for _, s := range qucloud.Table3Strategies {
			fmt.Printf(" | %5d/%-6d", r.CNOTs[s], r.Depth[s])
			v := tot[s]
			v[0] += r.CNOTs[s]
			v[1] += r.Depth[s]
			tot[s] = v
		}
		fmt.Println()
	}
	fmt.Printf("%-8s", "total")
	for _, s := range qucloud.Table3Strategies {
		fmt.Printf(" | %5d/%-6d", tot[s][0], tot[s][1])
	}
	fmt.Println()
	base := float64(tot[qucloud.Baseline][0])
	qc := float64(tot[qucloud.CDAPXSwap][0])
	sab := float64(tot[qucloud.SABRE][0])
	fmt.Printf("\nCDAP+X-SWAP vs Baseline: %+.1f%% CNOTs; vs SABRE: %+.1f%% CNOTs\n\n",
		(qc-base)/base*100, (qc-sab)/sab*100)
	return nil
}

func fig8() error {
	fmt.Println("== Figure 8: hierarchy tree (dendrogram) of IBM Q London, omega = 0.95")
	d := arch.London()
	tree := community.Build(d, 0.95)
	fmt.Println()
	fmt.Print(tree.Dendrogram())
	fmt.Println()
	return nil
}

func fig9(seed int64, days int) error {
	for _, tc := range []struct {
		name string
		dev  *arch.Device
		days int
	}{
		{"IBMQ16", arch.IBMQ16(seed), days},
		{"IBMQ50", arch.IBMQ50(seed), days},
	} {
		fmt.Printf("== Figure 9: avg redundant qubits vs omega on %s (%d days)\n\n", tc.name, tc.days)
		res := qucloud.RunFig9(tc.dev, tc.days, 0.05)
		for i, w := range res.Omegas {
			marker := ""
			if i == res.KneeIndex {
				marker = "   <- knee solution"
			}
			fmt.Printf("  omega %.2f  avg redundant %.3f%s\n", w, res.AvgRedundant[i], marker)
		}
		fmt.Printf("\nknee omega = %.2f (paper: 0.95 on IBMQ16, 0.40 on IBMQ50)\n\n", res.KneeOmega())
	}
	return nil
}

func fig14(seed int64, trials int) error {
	fmt.Printf("== Figure 14: task-scheduler fidelity/throughput trade-off (day %d, %d trials)\n\n", seed, trials)
	points, err := qucloud.RunFig14(seed, []float64{0.05, 0.10, 0.15, 0.20}, trials)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %8s %8s\n", "config", "PST(%)", "TRF")
	for _, p := range points {
		fmt.Printf("%-10s %8.1f %8.3f\n", p.Label, p.AvgPST, p.TRF)
	}
	fmt.Println()
	return nil
}
