// Command qusched simulates the QuCloud cloud service: a queue of
// compilation jobs is batched by the EPST scheduler (Algorithm 4), each
// batch is compiled with CDAP+X-SWAP, and the resulting fidelity and
// throughput are reported.
//
//	qusched -eps 0.15 -jobs bv_n3,toffoli_3,3_17_13,alu-v0_27
//	qusched -eps 0.10            # default queue: tiny+small suite x2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	qucloud "repro"
	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/nisqbench"
	"repro/internal/sched"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qusched:", err)
		os.Exit(1)
	}
}

// run owns the whole command so tests can drive it with an argument
// list and capture its report from w.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("qusched", flag.ContinueOnError)
	var (
		chip     = fs.String("chip", "ibmq16", "target chip ("+strings.Join(arch.StandardDevices(), ",")+")")
		seed     = fs.Int64("seed", 0, "calibration seed")
		eps      = fs.Float64("eps", 0.15, "EPST violation threshold")
		look     = fs.Int("lookahead", 10, "scheduler lookahead N")
		maxCo    = fs.Int("max-colocate", 3, "max programs per batch")
		trials   = fs.Int("trials", 1000, "Monte-Carlo trials per batch")
		jobNames = fs.String("jobs", "", "comma-separated benchmark names (default: tiny+small suite x2)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	d, err := arch.ByName(*chip, *seed)
	if err != nil {
		return err
	}

	var jobs []sched.Job
	if *jobNames == "" {
		jobs = qucloud.Fig14Queue(2)
	} else {
		for i, name := range strings.Split(*jobNames, ",") {
			c, err := nisqbench.Get(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			jobs = append(jobs, sched.Job{ID: i, Circ: c})
		}
	}
	byID := map[int]*circuit.Circuit{}
	for _, j := range jobs {
		byID[j.ID] = j.Circ
	}

	cfg := sched.DefaultConfig()
	cfg.Epsilon = *eps
	cfg.Lookahead = *look
	cfg.MaxColocate = *maxCo
	if d.NumQubits() > 20 {
		cfg.Omega = 0.40
	}
	batches, err := sched.Schedule(d, jobs, cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "chip %s, %d jobs -> %d batches (eps=%.2f, N=%d)\n\n",
		d.Name, len(jobs), len(batches), *eps, *look)
	comp := qucloud.NewCompiler(d)
	comp.Attempts = 2
	noise := sim.DefaultNoise()
	totalPST, count := 0.0, 0
	for bi, b := range batches {
		progs := make([]*circuit.Circuit, len(b.JobIDs))
		names := make([]string, len(b.JobIDs))
		for i, id := range b.JobIDs {
			progs[i] = byID[id]
			names[i] = progs[i].Name
		}
		strat := qucloud.CDAPXSwap
		if len(progs) == 1 {
			strat = qucloud.Separate
		}
		res, err := comp.Compile(progs, strat)
		if err != nil {
			res, err = comp.Compile(progs, qucloud.Separate)
			if err != nil {
				return err
			}
		}
		psts, err := comp.Simulate(res, *trials, *seed+int64(bi), noise)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "batch %2d (%s): %s\n", bi, res.Strategy, strings.Join(names, " + "))
		for i, pst := range psts {
			fmt.Fprintf(w, "    %-16s PST %5.1f%%\n", names[i], pst*100)
			totalPST += pst * 100
			count++
		}
	}
	fmt.Fprintf(w, "\navg PST %.1f%%, TRF %.3f\n", totalPST/float64(count), sched.TRF(len(jobs), batches))
	return nil
}
