package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmokeLondon drives the full command on the 5-qubit London
// chip with a two-job queue: it must schedule, compile, simulate, and
// report without error, and the report must carry the expected
// sections.
func TestRunSmokeLondon(t *testing.T) {
	args := []string{"-chip", "london", "-jobs", "bv_n3,3_17_13", "-trials", "64", "-eps", "0.15"}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"chip london, 2 jobs", "batch  0", "bv_n3", "3_17_13", "avg PST", "TRF"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunDeterministic: the same arguments must print byte-identical
// reports, making the text output usable as a golden artifact.
func TestRunDeterministic(t *testing.T) {
	args := []string{"-chip", "london", "-jobs", "bv_n3", "-trials", "64"}
	var first, second bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run(args, &second); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if first.String() != second.String() {
		t.Fatalf("output differs across identical runs:\n--- first\n%s\n--- second\n%s", first.String(), second.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-chip", "nope"}, &out); err == nil {
		t.Error("unknown chip accepted")
	}
	if err := run([]string{"-chip", "london", "-jobs", "no_such_bench"}, &out); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
