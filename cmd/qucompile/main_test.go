package main

import (
	"testing"

	qucloud "repro"
)

func TestParseStrategy(t *testing.T) {
	cases := map[string]qucloud.Strategy{
		"separate":   qucloud.Separate,
		"sabre":      qucloud.SABRE,
		"baseline":   qucloud.Baseline,
		"frp":        qucloud.Baseline,
		"cdap+xswap": qucloud.CDAPXSwap,
		"QuCloud":    qucloud.CDAPXSwap,
		"cdap":       qucloud.CDAPOnly,
		"xswap":      qucloud.XSwapOnly,
	}
	for in, want := range cases {
		got, err := parseStrategy(in)
		if err != nil || got != want {
			t.Fatalf("parseStrategy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseStrategy("nope"); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

func TestDeviceLookup(t *testing.T) {
	for _, name := range []string{"ibmq16", "ibmq50", "tokyo", "falcon27", "london"} {
		d, err := device(name, 0)
		if err != nil || d == nil {
			t.Fatalf("device(%q): %v", name, err)
		}
	}
	if _, err := device("bogus", 0); err == nil {
		t.Fatal("unknown device must error")
	}
}

func TestMultiFlag(t *testing.T) {
	var m multiFlag
	if err := m.Set("a.qasm"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b.qasm"); err != nil {
		t.Fatal(err)
	}
	if m.String() != "a.qasm,b.qasm" || len(m) != 2 {
		t.Fatalf("multiFlag = %v", m)
	}
}
