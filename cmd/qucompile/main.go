// Command qucompile compiles one or more quantum programs onto a
// simulated NISQ chip under any of the paper's six strategies and
// reports mapping, SWAP, CNOT, depth, and estimated-fidelity numbers.
//
// Programs are named Table I benchmarks or OpenQASM 2.0 files:
//
//	qucompile -chip ibmq16 -strategy cdap+xswap bv_n4 toffoli_3
//	qucompile -chip ibmq50 -strategy sabre -qasm prog1.qasm -qasm prog2.qasm
//	qucompile -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	qucloud "repro"
	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/nisqbench"
	"repro/internal/sim"
	"repro/internal/viz"
)

func main() {
	var (
		chip     = flag.String("chip", "ibmq16", "target chip: ibmq16, ibmq50, tokyo, falcon27, london")
		seed     = flag.Int64("seed", 0, "calibration seed (the synthetic 'calibration day')")
		strategy = flag.String("strategy", "cdap+xswap", "separate, sabre, baseline, cdap+xswap, cdap, xswap")
		trials   = flag.Int("trials", 2000, "Monte-Carlo trials for PST estimation (0 to skip)")
		attempts = flag.Int("attempts", 5, "compilation attempts; best (fewest CNOTs) wins")
		list     = flag.Bool("list", false, "list available benchmark programs and exit")
		emit     = flag.Bool("qasm-out", false, "print the compiled physical circuit as OpenQASM")
		timeline = flag.Bool("timeline", false, "print a per-qubit ASCII timeline of the schedule")
		calib    = flag.Bool("calibration", false, "print the chip's calibration report and exit")
		chipFile = flag.String("chip-file", "", "load the chip from a JSON DeviceSpec file instead of -chip")
		export   = flag.String("export-chip", "", "write the chip (topology + calibration) as JSON to this file and exit")
	)
	var qasmFiles multiFlag
	flag.Var(&qasmFiles, "qasm", "OpenQASM 2.0 file to compile (repeatable)")
	flag.Parse()

	if *list {
		for _, name := range nisqbench.Names() {
			c := nisqbench.MustGet(name)
			cl, _ := nisqbench.Class(name)
			fmt.Printf("%-16s %-6s %2d qubits %4d CNOTs depth %4d\n",
				name, cl, c.NumQubits, c.RawCNOTCount(), c.Depth())
		}
		return
	}

	var d *arch.Device
	var err error
	if *chipFile != "" {
		f, ferr := os.Open(*chipFile)
		if ferr != nil {
			fatal(ferr)
		}
		d, err = arch.LoadDevice(f)
		f.Close()
	} else {
		d, err = device(*chip, *seed)
	}
	if err != nil {
		fatal(err)
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fatal(err)
		}
		err = arch.SaveDevice(f, d)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d qubits, %d links)\n", *export, d.NumQubits(), d.Coupling.M())
		return
	}
	if *calib {
		fmt.Print(viz.CalibrationReport(d))
		return
	}
	strat, err := parseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}

	var progs []*circuit.Circuit
	for _, name := range flag.Args() {
		c, err := nisqbench.Get(name)
		if err != nil {
			fatal(err)
		}
		progs = append(progs, c)
	}
	for _, path := range qasmFiles {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		c, err := circuit.ParseQASM(path, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		progs = append(progs, c)
	}
	if len(progs) == 0 {
		fatal(fmt.Errorf("no programs given; pass benchmark names or -qasm files (-list shows benchmarks)"))
	}

	comp := qucloud.NewCompiler(d)
	comp.Attempts = *attempts
	res, err := comp.Compile(progs, strat)
	if err != nil {
		fatal(err)
	}
	if err := res.Validate(); err != nil {
		fatal(fmt.Errorf("internal error: invalid schedule: %w", err))
	}

	fmt.Printf("chip %s (%d qubits), strategy %s\n", d.Name, d.NumQubits(), strat)
	fmt.Printf("post-compilation: %d CNOTs, depth %d, %d SWAPs (%d inter-program)\n",
		res.CNOTs, res.Depth, res.Swaps, res.InterSwaps)
	for i, p := range progs {
		fmt.Printf("  program %d %-16s %d qubits, %d CNOTs\n", i, p.Name, p.NumQubits, p.RawCNOTCount())
	}
	if *trials > 0 {
		psts, err := comp.Simulate(res, *trials, *seed+99, sim.DefaultNoise())
		if err != nil {
			fatal(err)
		}
		for i, pst := range psts {
			fmt.Printf("  program %d PST = %.1f%% (%d trials)\n", i, pst*100, *trials)
		}
	}
	if *timeline {
		for i, s := range res.Schedules {
			if len(res.Schedules) > 1 {
				fmt.Printf("\nschedule %d:\n", i)
			} else {
				fmt.Println()
			}
			fmt.Print(viz.Timeline(s, 120))
		}
	}
	if *emit {
		for _, s := range res.Schedules {
			fmt.Print(circuit.QASMString(s.PhysicalCircuit()))
		}
	}
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func device(name string, seed int64) (*arch.Device, error) {
	return arch.ByName(name, seed)
}

func parseStrategy(s string) (qucloud.Strategy, error) {
	switch strings.ToLower(s) {
	case "separate":
		return qucloud.Separate, nil
	case "sabre":
		return qucloud.SABRE, nil
	case "baseline", "frp":
		return qucloud.Baseline, nil
	case "cdap+xswap", "qucloud":
		return qucloud.CDAPXSwap, nil
	case "cdap":
		return qucloud.CDAPOnly, nil
	case "xswap":
		return qucloud.XSwapOnly, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qucompile:", err)
	os.Exit(1)
}
