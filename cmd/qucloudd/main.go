// Command qucloudd runs the QuCloud compilation service: a
// long-running daemon that accepts QASM jobs over HTTP, batches them
// with the EPST scheduler, compiles them with the QuCloud pipeline,
// and executes them on the noisy simulator.
//
// Serve (default mode):
//
//	qucloudd -addr :8080 -backends ibmq16,tokyo -policy static -eps 0.15
//
// Every admitted job is routed across the registered chips by the
// fleet dispatcher (-fleet-policy speed|fidelity|fairness|balanced);
// a backends entry may be replicated with "name*N" (e.g. "london*4")
// to register N identically-calibrated copies.
//
// Load generator — replay an internal/nisqbench workload against a
// running daemon and report end-to-end throughput and latency:
//
//	qucloudd loadgen -addr http://127.0.0.1:8080 -n 40 -class tiny
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/fleet"
	"repro/internal/nisqbench"
	"repro/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("qucloudd: ")
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "loadgen" {
		if err := runLoadgen(args[1:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runServe(args); err != nil {
		log.Fatal(err)
	}
}

// parseBackends resolves a comma-separated device list (e.g.
// "ibmq16,tokyo") into arch devices with the given calibration seed.
// An entry may carry a "*N" replication suffix ("london*4" registers
// london-1 … london-4 with per-copy calibration seeds) so a
// homogeneous fleet doesn't need N spellings. Unknown chip names error
// with the valid list.
func parseBackends(spec string, seed int64) ([]*arch.Device, error) {
	var out []*arch.Device
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, count := entry, 1
		if base, n, ok := strings.Cut(entry, "*"); ok {
			c, err := strconv.Atoi(strings.TrimSpace(n))
			if err != nil || c < 1 {
				return nil, fmt.Errorf("bad replication %q (want name*N with N >= 1)", entry)
			}
			name, count = strings.TrimSpace(base), c
		}
		for i := 0; i < count; i++ {
			d, err := arch.ByName(name, seed+int64(i))
			if err != nil {
				return nil, fmt.Errorf("unknown backend %q (valid: %s)",
					name, strings.Join(arch.StandardDevices(), ", "))
			}
			if count > 1 {
				d.Name = fmt.Sprintf("%s-%d", d.Name, i+1)
			}
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no backends in %q (try %s)", spec, strings.Join(arch.StandardDevices(), ","))
	}
	return out, nil
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("qucloudd", flag.ExitOnError)
	var (
		addr         = fs.String("addr", ":8080", "HTTP listen address")
		backends     = fs.String("backends", "ibmq16,tokyo", "comma-separated backend chips ("+strings.Join(arch.StandardDevices(), ",")+")")
		calSeed      = fs.Int64("cal-seed", 0, "calibration seed for the backends")
		policy       = fs.String("policy", "static", "epsilon policy: static or adaptive")
		fleetPolicy  = fs.String("fleet-policy", "balanced", "fleet allocation policy: "+strings.Join(fleet.Names(), ", "))
		execDwell    = fs.Duration("exec-dwell", 0, "emulated per-batch hardware occupancy (shot time); 0 disables")
		eps          = fs.Float64("eps", 0.15, "(initial) EPST violation threshold")
		queueSize    = fs.Int("queue", 256, "bounded queue capacity (429 when full)")
		trials       = fs.Int("trials", 512, "Monte-Carlo trials per batch")
		attempts     = fs.Int("attempts", 1, "compiler best-of-N attempts")
		lookahead    = fs.Int("lookahead", 10, "scheduler lookahead N")
		maxColocate  = fs.Int("max-colocate", 3, "max programs per batch")
		seed         = fs.Int64("seed", 1, "simulation seed base")
		reqTimeout   = fs.Duration("request-timeout", 30*time.Second, "per-request HTTP timeout")
		drainTimeout = fs.Duration("drain-timeout", 60*time.Second, "max time to drain the queue on SIGINT/SIGTERM")
		batchTimeout = fs.Duration("batch-timeout", 2*time.Minute, "per-batch compile+simulate deadline (negative disables)")
		retries      = fs.Int("retries", 2, "max retries per batch on transient failures")
		brkThresh    = fs.Int("breaker-threshold", 5, "consecutive batch failures before a backend's breaker opens (negative disables)")
		brkCooldown  = fs.Duration("breaker-cooldown", 5*time.Second, "open-breaker cooldown before a half-open probe")
		history      = fs.Int("history", 4096, "terminal job records retained per service (negative keeps all)")
		cacheSize    = fs.Int("cache-size", 1024, "compile-cache entries (0 uses the default, negative disables caching)")
		crosstalk    = fs.Bool("crosstalk", false, "install a synthetic SRB crosstalk matrix on every backend (CDAP placement and EPST admission become pair-aware)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	devices, err := parseBackends(*backends, *calSeed)
	if err != nil {
		return err
	}
	if *crosstalk {
		for i, d := range devices {
			d.Crosstalk = arch.GenerateCrosstalk(d, *calSeed+int64(i)*131)
			if err := d.Validate(); err != nil {
				return fmt.Errorf("crosstalk matrix for %s: %w", d.Name, err)
			}
		}
	}
	cfg := service.DefaultConfig()
	cfg.Policy = service.Policy(*policy)
	cfg.FleetPolicy = *fleetPolicy
	cfg.ExecDwell = *execDwell
	cfg.Epsilon = *eps
	cfg.QueueSize = *queueSize
	cfg.Trials = *trials
	cfg.Attempts = *attempts
	cfg.Lookahead = *lookahead
	cfg.MaxColocate = *maxColocate
	cfg.Seed = *seed
	cfg.RequestTimeout = *reqTimeout
	cfg.BatchTimeout = *batchTimeout
	cfg.MaxRetries = *retries
	cfg.BreakerThreshold = *brkThresh
	cfg.BreakerCooldown = *brkCooldown
	cfg.MaxJobHistory = *history
	cfg.CacheSize = *cacheSize
	svc, err := service.New(devices, cfg)
	if err != nil {
		return err
	}
	svc.Metrics().PublishExpvar()
	svc.Start()

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	server := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving %d backends on %s (policy=%s fleet=%s eps=%.3f queue=%d)",
			len(devices), *addr, cfg.Policy, cfg.FleetPolicy, cfg.Epsilon, cfg.QueueSize)
		if err := server.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("signal received: draining queue (up to %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		log.Printf("forced shutdown: %v", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := server.Shutdown(shutCtx); err != nil {
		return err
	}
	snap := svc.Metrics().Snapshot()
	log.Printf("drained: %d completed, %d failed, %d batches (avg size %.2f)",
		snap.Jobs.Completed, snap.Jobs.Failed, snap.Batches.Executed, snap.Batches.AvgSize)
	return nil
}

// pickBenchmarks selects the loadgen circuit mix: an explicit
// comma-separated -bench list, or every benchmark of the -class.
func pickBenchmarks(benchList, class string) ([]*circuit.Circuit, error) {
	var names []string
	if benchList != "" {
		for _, n := range strings.Split(benchList, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	} else {
		var sc nisqbench.SizeClass
		switch class {
		case "tiny":
			sc = nisqbench.Tiny
		case "small":
			sc = nisqbench.Small
		case "large":
			sc = nisqbench.Large
		default:
			return nil, fmt.Errorf("unknown class %q (tiny, small, large)", class)
		}
		names = nisqbench.ByClass(sc)
	}
	var circs []*circuit.Circuit
	for _, n := range names {
		c, err := nisqbench.Get(n)
		if err != nil {
			return nil, err
		}
		circs = append(circs, c)
	}
	if len(circs) == 0 {
		return nil, fmt.Errorf("no benchmarks selected")
	}
	return circs, nil
}

func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("qucloudd loadgen", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
		n       = fs.Int("n", 40, "jobs to submit")
		class   = fs.String("class", "tiny", "benchmark class: tiny, small, large")
		bench   = fs.String("bench", "", "explicit comma-separated benchmark names (overrides -class)")
		meanGap = fs.Duration("mean-gap", 100*time.Millisecond, "mean inter-arrival gap (exponential)")
		seed    = fs.Int64("seed", 2026, "arrival-stream seed")
		timeout = fs.Duration("timeout", 5*time.Minute, "max time to wait for all jobs to finish")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	circs, err := pickBenchmarks(*bench, *class)
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: 30 * time.Second}
	base := strings.TrimRight(*addr, "/")
	rng := rand.New(rand.NewSource(*seed))
	var ids []string
	rejected := 0
	start := time.Now()
	for i := 0; i < *n; i++ {
		c := circs[i%len(circs)]
		body, _ := json.Marshal(service.SubmitRequest{Name: c.Name, QASM: circuit.QASMString(c)})
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var rec service.JobRecord
			if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
				resp.Body.Close()
				return fmt.Errorf("submit %d: decode: %w", i, err)
			}
			ids = append(ids, rec.ID)
		case http.StatusTooManyRequests:
			rejected++
		default:
			b := new(bytes.Buffer)
			_, _ = b.ReadFrom(resp.Body)
			resp.Body.Close()
			return fmt.Errorf("submit %d: HTTP %d: %s", i, resp.StatusCode, strings.TrimSpace(b.String()))
		}
		resp.Body.Close()
		if gap := time.Duration(rng.ExpFloat64() * float64(*meanGap)); gap > 0 && i+1 < *n {
			time.Sleep(gap)
		}
	}
	submitted := len(ids)
	fmt.Printf("submitted %d jobs (%d rejected with 429) in %.1fs\n",
		submitted, rejected, time.Since(start).Seconds())

	// Poll until every accepted job reaches a terminal state.
	deadline := time.Now().Add(*timeout)
	records := make(map[string]service.JobRecord, submitted)
	for len(records) < submitted {
		if time.Now().After(deadline) {
			return fmt.Errorf("timeout: %d/%d jobs finished", len(records), submitted)
		}
		for _, id := range ids {
			if _, done := records[id]; done {
				continue
			}
			resp, err := client.Get(base + "/v1/jobs/" + id)
			if err != nil {
				return fmt.Errorf("poll %s: %w", id, err)
			}
			var rec service.JobRecord
			err = json.NewDecoder(resp.Body).Decode(&rec)
			resp.Body.Close()
			if err != nil {
				return fmt.Errorf("poll %s: decode: %w", id, err)
			}
			if rec.State.Terminal() {
				records[id] = rec
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	elapsed := time.Since(start)

	done, failed := 0, 0
	var waitSum, svcSum, pstSum float64
	for _, rec := range records {
		if rec.State == service.StateDone {
			done++
			pstSum += rec.PST
		} else {
			failed++
		}
		waitSum += rec.WaitSeconds
		svcSum += rec.ServiceSeconds
	}
	fmt.Printf("finished in %.1fs: %d done, %d failed (%.1f jobs/min)\n",
		elapsed.Seconds(), done, failed, float64(done+failed)/elapsed.Minutes())
	if submitted > 0 {
		fmt.Printf("avg wait %.2fs, avg service %.2fs", waitSum/float64(submitted), svcSum/float64(submitted))
		if done > 0 {
			fmt.Printf(", avg PST %.3f", pstSum/float64(done))
		}
		fmt.Println()
	}

	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	defer resp.Body.Close()
	var snap service.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("metrics: decode: %w", err)
	}
	fmt.Printf("daemon: %d batches, avg size %.2f, co-location rate %.0f%%, queue p99 %.2fs, total p99 %.2fs\n",
		snap.Batches.Executed, snap.Batches.AvgSize, snap.Batches.ColocationRate*100,
		snap.LatencySeconds.Queue.P99, snap.LatencySeconds.Total.P99)
	return nil
}
