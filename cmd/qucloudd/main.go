// Command qucloudd runs the QuCloud compilation service: a
// long-running daemon that accepts QASM jobs over HTTP, batches them
// with the EPST scheduler, compiles them with the QuCloud pipeline,
// and executes them on the noisy simulator.
//
// Serve (default mode):
//
//	qucloudd -addr :8080 -backends ibmq16,tokyo -policy static -eps 0.15
//
// Every admitted job is routed across the registered chips by the
// fleet dispatcher (-fleet-policy speed|fidelity|fairness|balanced);
// a backends entry may be replicated with "name*N" (e.g. "london*4")
// to register N identically-calibrated copies.
//
// Load generator — replay an internal/nisqbench workload against a
// running daemon and report end-to-end throughput and latency:
//
//	qucloudd loadgen -addr http://127.0.0.1:8080 -n 40 -class tiny
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/fleet"
	"repro/internal/nisqbench"
	"repro/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("qucloudd: ")
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "loadgen" {
		if err := runLoadgen(args[1:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runServe(args); err != nil {
		log.Fatal(err)
	}
}

// parseBackends resolves a comma-separated device list (e.g.
// "ibmq16,tokyo") into arch devices with the given calibration seed.
// An entry may carry a "*N" replication suffix ("london*4" registers
// london-1 … london-4 with per-copy calibration seeds) so a
// homogeneous fleet doesn't need N spellings. Unknown chip names error
// with the valid list.
func parseBackends(spec string, seed int64) ([]*arch.Device, error) {
	var out []*arch.Device
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, count := entry, 1
		if base, n, ok := strings.Cut(entry, "*"); ok {
			c, err := strconv.Atoi(strings.TrimSpace(n))
			if err != nil || c < 1 {
				return nil, fmt.Errorf("bad replication %q (want name*N with N >= 1)", entry)
			}
			name, count = strings.TrimSpace(base), c
		}
		for i := 0; i < count; i++ {
			d, err := arch.ByName(name, seed+int64(i))
			if err != nil {
				return nil, fmt.Errorf("unknown backend %q (valid: %s)",
					name, strings.Join(arch.StandardDevices(), ", "))
			}
			if count > 1 {
				d.Name = fmt.Sprintf("%s-%d", d.Name, i+1)
			}
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no backends in %q (try %s)", spec, strings.Join(arch.StandardDevices(), ","))
	}
	return out, nil
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("qucloudd", flag.ExitOnError)
	var (
		addr         = fs.String("addr", ":8080", "HTTP listen address")
		backends     = fs.String("backends", "ibmq16,tokyo", "comma-separated backend chips ("+strings.Join(arch.StandardDevices(), ",")+")")
		calSeed      = fs.Int64("cal-seed", 0, "calibration seed for the backends")
		policy       = fs.String("policy", "static", "epsilon policy: static or adaptive")
		fleetPolicy  = fs.String("fleet-policy", "balanced", "fleet allocation policy: "+strings.Join(fleet.Names(), ", "))
		execDwell    = fs.Duration("exec-dwell", 0, "emulated per-batch hardware occupancy (shot time); 0 disables")
		eps          = fs.Float64("eps", 0.15, "(initial) EPST violation threshold")
		queueSize    = fs.Int("queue", 256, "bounded queue capacity (429 when full)")
		trials       = fs.Int("trials", 512, "Monte-Carlo trials per batch")
		attempts     = fs.Int("attempts", 1, "compiler best-of-N attempts")
		lookahead    = fs.Int("lookahead", 10, "scheduler lookahead N")
		maxColocate  = fs.Int("max-colocate", 3, "max programs per batch")
		seed         = fs.Int64("seed", 1, "simulation seed base")
		reqTimeout   = fs.Duration("request-timeout", 30*time.Second, "per-request HTTP timeout")
		drainTimeout = fs.Duration("drain-timeout", 60*time.Second, "max time to drain the queue on SIGINT/SIGTERM")
		batchTimeout = fs.Duration("batch-timeout", 2*time.Minute, "per-batch compile+simulate deadline (negative disables)")
		retries      = fs.Int("retries", 2, "max retries per batch on transient failures")
		brkThresh    = fs.Int("breaker-threshold", 5, "consecutive batch failures before a backend's breaker opens (negative disables)")
		brkCooldown  = fs.Duration("breaker-cooldown", 5*time.Second, "open-breaker cooldown before a half-open probe")
		history      = fs.Int("history", 4096, "terminal job records retained per service (negative keeps all)")
		cacheSize    = fs.Int("cache-size", 1024, "compile-cache entries (0 uses the default, negative disables caching)")
		crosstalk    = fs.Bool("crosstalk", false, "install a synthetic SRB crosstalk matrix on every backend (CDAP placement and EPST admission become pair-aware)")
		dataDir      = fs.String("data-dir", "", "directory for the write-ahead job log (queued jobs survive restart); empty disables")
		tenantsFile  = fs.String("tenants", "", "JSON file with the tenant key table ([{\"id\":...,\"key\":...,\"weight\":...}]); empty serves a single open tenant")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	devices, err := parseBackends(*backends, *calSeed)
	if err != nil {
		return err
	}
	if *crosstalk {
		for i, d := range devices {
			d.Crosstalk = arch.GenerateCrosstalk(d, *calSeed+int64(i)*131)
			if err := d.Validate(); err != nil {
				return fmt.Errorf("crosstalk matrix for %s: %w", d.Name, err)
			}
		}
	}
	cfg := service.DefaultConfig()
	cfg.Policy = service.Policy(*policy)
	cfg.FleetPolicy = *fleetPolicy
	cfg.ExecDwell = *execDwell
	cfg.Epsilon = *eps
	cfg.QueueSize = *queueSize
	cfg.Trials = *trials
	cfg.Attempts = *attempts
	cfg.Lookahead = *lookahead
	cfg.MaxColocate = *maxColocate
	cfg.Seed = *seed
	cfg.RequestTimeout = *reqTimeout
	cfg.BatchTimeout = *batchTimeout
	cfg.MaxRetries = *retries
	cfg.BreakerThreshold = *brkThresh
	cfg.BreakerCooldown = *brkCooldown
	cfg.MaxJobHistory = *history
	cfg.CacheSize = *cacheSize
	cfg.DataDir = *dataDir
	if *tenantsFile != "" {
		tenants, err := service.LoadTenants(*tenantsFile)
		if err != nil {
			return err
		}
		cfg.Tenants = tenants
	}
	svc, err := service.New(devices, cfg)
	if err != nil {
		return err
	}
	svc.Metrics().PublishExpvar()
	svc.Start()

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	server := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving %d backends on %s (policy=%s fleet=%s eps=%.3f queue=%d)",
			len(devices), *addr, cfg.Policy, cfg.FleetPolicy, cfg.Epsilon, cfg.QueueSize)
		if err := server.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("signal received: draining queue (up to %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		log.Printf("forced shutdown: %v", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := server.Shutdown(shutCtx); err != nil {
		return err
	}
	snap := svc.Metrics().Snapshot()
	log.Printf("drained: %d completed, %d failed, %d batches (avg size %.2f)",
		snap.Jobs.Completed, snap.Jobs.Failed, snap.Batches.Executed, snap.Batches.AvgSize)
	return nil
}

// pickBenchmarks selects the loadgen circuit mix: an explicit
// comma-separated -bench list, or every benchmark of the -class.
func pickBenchmarks(benchList, class string) ([]*circuit.Circuit, error) {
	var names []string
	if benchList != "" {
		for _, n := range strings.Split(benchList, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	} else {
		var sc nisqbench.SizeClass
		switch class {
		case "tiny":
			sc = nisqbench.Tiny
		case "small":
			sc = nisqbench.Small
		case "large":
			sc = nisqbench.Large
		default:
			return nil, fmt.Errorf("unknown class %q (tiny, small, large)", class)
		}
		names = nisqbench.ByClass(sc)
	}
	var circs []*circuit.Circuit
	for _, n := range names {
		c, err := nisqbench.Get(n)
		if err != nil {
			return nil, err
		}
		circs = append(circs, c)
	}
	if len(circs) == 0 {
		return nil, fmt.Errorf("no benchmarks selected")
	}
	return circs, nil
}

// lgStream is one loadgen submission stream: a tenant key driving an
// independent Poisson arrival process.
type lgStream struct {
	key    string
	weight float64

	tenant   string // tenant ID from the first accepted job (or "anonymous")
	ids      []string
	rejected int
	records  map[string]service.JobRecord
	err      error
}

// parseStreams resolves -keys/-weights into submission streams. Empty
// keys means a single anonymous stream (the open-mode daemon).
func parseStreams(keys, weights string) ([]*lgStream, error) {
	if keys == "" {
		return []*lgStream{{key: "", weight: 1, tenant: "anonymous"}}, nil
	}
	ks := strings.Split(keys, ",")
	var ws []string
	if weights != "" {
		ws = strings.Split(weights, ",")
		if len(ws) != len(ks) {
			return nil, fmt.Errorf("-weights has %d entries for %d keys", len(ws), len(ks))
		}
	}
	streams := make([]*lgStream, len(ks))
	for i, k := range ks {
		k = strings.TrimSpace(k)
		if k == "" {
			return nil, fmt.Errorf("-keys entry %d is empty", i)
		}
		w := 1.0
		if ws != nil {
			v, err := strconv.ParseFloat(strings.TrimSpace(ws[i]), 64)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("-weights entry %d (%q) is not a positive number", i, ws[i])
			}
			w = v
		}
		streams[i] = &lgStream{key: k, weight: w}
	}
	return streams, nil
}

// lgDo issues one authenticated request and decodes a JSON body into
// out (when out is non-nil and the status is 2xx).
func lgDo(client *http.Client, method, url, key string, body []byte, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode/100 == 2 {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	b := new(bytes.Buffer)
	_, _ = b.ReadFrom(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode/100 != 2 && resp.StatusCode != http.StatusTooManyRequests {
		return resp.StatusCode, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(b.String()))
	}
	return resp.StatusCode, nil
}

// lgSubmit drives one stream: n submissions with exponential
// inter-arrival gaps, retrying 429 backpressure after the next gap so a
// throttled tenant keeps offering load (that sustained pressure is what
// the fairness report measures).
func (st *lgStream) lgSubmit(client *http.Client, base string, n int, meanGap time.Duration, rng *rand.Rand, circs []*circuit.Circuit, deadline time.Time) error {
	for i := 0; i < n; {
		if time.Now().After(deadline) {
			return fmt.Errorf("timeout: %d/%d jobs submitted", i, n)
		}
		c := circs[i%len(circs)]
		body, _ := json.Marshal(service.SubmitRequest{Name: c.Name, QASM: circuit.QASMString(c)})
		var rec service.JobRecord
		status, err := lgDo(client, http.MethodPost, base+"/v1/jobs", st.key, body, &rec)
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		if status == http.StatusTooManyRequests {
			st.rejected++
		} else {
			st.ids = append(st.ids, rec.ID)
			if st.tenant == "" {
				st.tenant = rec.Tenant
			}
			i++
		}
		if gap := time.Duration(rng.ExpFloat64() * float64(meanGap)); gap > 0 {
			time.Sleep(gap)
		}
	}
	return nil
}

// lgPoll waits until every accepted job of the stream is terminal.
func (st *lgStream) lgPoll(client *http.Client, base string, deadline time.Time) error {
	st.records = make(map[string]service.JobRecord, len(st.ids))
	for len(st.records) < len(st.ids) {
		if time.Now().After(deadline) {
			return fmt.Errorf("timeout: %d/%d jobs finished", len(st.records), len(st.ids))
		}
		for _, id := range st.ids {
			if _, done := st.records[id]; done {
				continue
			}
			var rec service.JobRecord
			if _, err := lgDo(client, http.MethodGet, base+"/v1/jobs/"+id, st.key, nil, &rec); err != nil {
				return fmt.Errorf("poll %s: %w", id, err)
			}
			if rec.State.Terminal() {
				st.records[id] = rec
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return nil
}

// percentile returns the p-th percentile (0 < p <= 1) of xs, which it
// sorts in place.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	i := int(math.Ceil(p*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	return xs[i]
}

// jainIndex is Jain's fairness index over the samples:
// J = (Σx)² / (k·Σx²), 1.0 when all shares are equal, 1/k when one
// claims everything.
func jainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq > 0 {
		return sum * sum / (float64(len(xs)) * sq)
	}
	return 0
}

func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("qucloudd loadgen", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
		n       = fs.Int("n", 40, "jobs to submit per stream")
		class   = fs.String("class", "tiny", "benchmark class: tiny, small, large")
		bench   = fs.String("bench", "", "explicit comma-separated benchmark names (overrides -class)")
		meanGap = fs.Duration("mean-gap", 100*time.Millisecond, "mean inter-arrival gap per stream (exponential)")
		seed    = fs.Int64("seed", 2026, "arrival-stream seed")
		timeout = fs.Duration("timeout", 5*time.Minute, "max time to wait for all jobs to finish")
		keys    = fs.String("keys", "", "comma-separated API keys; one concurrent Poisson stream per key (empty runs a single anonymous stream)")
		weights = fs.String("weights", "", "comma-separated fair-share weights matching -keys (default 1 each); only normalizes the fairness report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	circs, err := pickBenchmarks(*bench, *class)
	if err != nil {
		return err
	}
	streams, err := parseStreams(*keys, *weights)
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: 30 * time.Second}
	base := strings.TrimRight(*addr, "/")
	deadline := time.Now().Add(*timeout)
	start := time.Now()

	// One goroutine per stream: submit with independent Poisson gaps,
	// then poll that stream's jobs to terminal states.
	var wg sync.WaitGroup
	for i, st := range streams {
		wg.Add(1)
		go func(i int, st *lgStream) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(i)))
			if err := st.lgSubmit(client, base, *n, *meanGap, rng, circs, deadline); err != nil {
				st.err = err
				return
			}
			st.err = st.lgPoll(client, base, deadline)
		}(i, st)
	}
	wg.Wait()
	for _, st := range streams {
		if st.err != nil {
			return fmt.Errorf("stream %s: %w", st.tenantLabel(), st.err)
		}
	}
	elapsed := time.Since(start)

	// Per-tenant accounting and the cross-tenant fairness report.
	var allTotals, shares []float64
	totalDone, totalFailed, totalRejected := 0, 0, 0
	for _, st := range streams {
		done, failed := 0, 0
		totals := make([]float64, 0, len(st.records))
		for _, id := range st.ids {
			rec := st.records[id]
			if rec.State == service.StateDone {
				done++
			} else {
				failed++
			}
			totals = append(totals, rec.WaitSeconds+rec.ServiceSeconds)
		}
		allTotals = append(allTotals, totals...)
		shares = append(shares, float64(done)/st.weight)
		totalDone += done
		totalFailed += failed
		totalRejected += st.rejected
		fmt.Printf("tenant %-12s weight %.1f: %d done, %d failed, %d throttled (429), p99 total %.2fs\n",
			st.tenantLabel(), st.weight, done, failed, st.rejected, percentile(totals, 0.99))
	}
	fmt.Printf("finished in %.1fs: %d done, %d failed, %d throttled (%.1f jobs/min)\n",
		elapsed.Seconds(), totalDone, totalFailed, totalRejected,
		float64(totalDone+totalFailed)/elapsed.Minutes())
	fmt.Printf("overall p99 total %.2fs", percentile(allTotals, 0.99))
	if len(streams) > 1 {
		fmt.Printf(", Jain fairness %.4f over weight-normalized completions", jainIndex(shares))
	}
	fmt.Println()

	var snap service.MetricsSnapshot
	if _, err := lgDo(client, http.MethodGet, base+"/metrics", "", nil, &snap); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	fmt.Printf("daemon: %d batches, avg size %.2f, co-location rate %.0f%%, queue p99 %.2fs, total p99 %.2fs\n",
		snap.Batches.Executed, snap.Batches.AvgSize, snap.Batches.ColocationRate*100,
		snap.LatencySeconds.Queue.P99, snap.LatencySeconds.Total.P99)
	return nil
}

// tenantLabel names the stream for reports: the tenant ID once a job
// was accepted, otherwise a key prefix.
func (st *lgStream) tenantLabel() string {
	if st.tenant != "" {
		return st.tenant
	}
	if len(st.key) > 8 {
		return st.key[:8] + "…"
	}
	return st.key
}
