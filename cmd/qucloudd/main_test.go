package main

import (
	"testing"
)

func TestParseBackends(t *testing.T) {
	devs, err := parseBackends("london, ibmq16", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 2 || devs[0].Name == devs[1].Name {
		t.Fatalf("unexpected devices: %v", devs)
	}
	if devs[0].NumQubits() != 5 || devs[1].NumQubits() <= devs[0].NumQubits() {
		t.Fatalf("unexpected sizes: %d, %d", devs[0].NumQubits(), devs[1].NumQubits())
	}
	if _, err := parseBackends("nosuchchip", 0); err == nil {
		t.Fatal("expected error for unknown chip")
	}
	if _, err := parseBackends(" , ", 0); err == nil {
		t.Fatal("expected error for empty backend list")
	}
}

func TestPickBenchmarks(t *testing.T) {
	circs, err := pickBenchmarks("bv_n3,toffoli_3", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(circs) != 2 {
		t.Fatalf("got %d circuits", len(circs))
	}
	tiny, err := pickBenchmarks("", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if len(tiny) == 0 {
		t.Fatal("tiny class is empty")
	}
	for _, c := range tiny {
		if c.NumQubits == 0 {
			t.Fatalf("benchmark %q has no qubits", c.Name)
		}
	}
	if _, err := pickBenchmarks("", "nosuchclass"); err == nil {
		t.Fatal("expected error for unknown class")
	}
	if _, err := pickBenchmarks("nosuchbench", ""); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}
