package main

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/arch"
)

func TestParseBackends(t *testing.T) {
	devs, err := parseBackends("london, ibmq16", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 2 || devs[0].Name == devs[1].Name {
		t.Fatalf("unexpected devices: %v", devs)
	}
	if devs[0].NumQubits() != 5 || devs[1].NumQubits() <= devs[0].NumQubits() {
		t.Fatalf("unexpected sizes: %d, %d", devs[0].NumQubits(), devs[1].NumQubits())
	}
	if _, err := parseBackends("nosuchchip", 0); err == nil {
		t.Fatal("expected error for unknown chip")
	}
	if _, err := parseBackends(" , ", 0); err == nil {
		t.Fatal("expected error for empty backend list")
	}
}

// TestParseBackendsUnknownChipListsValidNames: the startup error must
// tell the operator what chips exist, not fail bare.
func TestParseBackendsUnknownChipListsValidNames(t *testing.T) {
	_, err := parseBackends("nosuchchip", 0)
	if err == nil {
		t.Fatal("expected error for unknown chip")
	}
	msg := err.Error()
	for _, name := range arch.StandardDevices() {
		if !strings.Contains(msg, name) {
			t.Fatalf("error %q does not list valid chip %q", msg, name)
		}
	}
}

// TestParseBackendsReplication covers the name*N fan-out syntax.
func TestParseBackendsReplication(t *testing.T) {
	devs, err := parseBackends("london*3", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 3 {
		t.Fatalf("london*3 produced %d devices", len(devs))
	}
	names := map[string]bool{}
	for i, d := range devs {
		want := fmt.Sprintf("london-%d", i+1)
		if d.Name != want {
			t.Fatalf("device %d named %q, want %q", i, d.Name, want)
		}
		if names[d.Name] {
			t.Fatalf("duplicate replicated name %q", d.Name)
		}
		names[d.Name] = true
		if d.NumQubits() != 5 {
			t.Fatalf("replica %d has %d qubits", i, d.NumQubits())
		}
	}
	// Mixed spec: replicas plus a singleton keep their plain name.
	devs, err = parseBackends("london*2,tokyo", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 3 || devs[2].Name != "tokyo" {
		t.Fatalf("mixed spec: %v", devs)
	}
	for _, bad := range []string{"london*0", "london*-1", "london*x", "london*"} {
		if _, err := parseBackends(bad, 0); err == nil {
			t.Fatalf("%q should be rejected", bad)
		}
	}
}

func TestPickBenchmarks(t *testing.T) {
	circs, err := pickBenchmarks("bv_n3,toffoli_3", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(circs) != 2 {
		t.Fatalf("got %d circuits", len(circs))
	}
	tiny, err := pickBenchmarks("", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if len(tiny) == 0 {
		t.Fatal("tiny class is empty")
	}
	for _, c := range tiny {
		if c.NumQubits == 0 {
			t.Fatalf("benchmark %q has no qubits", c.Name)
		}
	}
	if _, err := pickBenchmarks("", "nosuchclass"); err == nil {
		t.Fatal("expected error for unknown class")
	}
	if _, err := pickBenchmarks("nosuchbench", ""); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}
