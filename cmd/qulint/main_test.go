package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestModuleIsClean is the smoke test the Makefile's lint target
// relies on: qulint over the real module must exit 0 with no output.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../..", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("qulint ./... = exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run wrote to stdout:\n%s", stdout.String())
	}
}

// TestJSONOutput filters to a single package and asserts the -json
// encoding is the report object: findings (with docs), the selected
// checks, and suppression counts.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../..", "-json", "-checks", "floateq", "./internal/fp"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	var report jsonReport
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("output is not a JSON report object: %v\n%s", err, stdout.String())
	}
	if len(report.Findings) != 0 {
		t.Errorf("internal/fp should be floateq-clean, got %v", report.Findings)
	}
	if len(report.Checks) != 1 || report.Checks[0].Name != "floateq" || report.Checks[0].Doc == "" {
		t.Errorf("checks section = %+v, want the documented floateq entry", report.Checks)
	}
}

// writeTempModule lays out a scratch module for the exit-code tests.
func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.21\n"
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestExitOneOnFindings drives the driver over a module with a real
// defect: findings must reach stdout and the exit status must be 1,
// distinct from the load-error status.
func TestExitOneOnFindings(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"internal/core/eq.go": "package core\n\n// Eq compares floats exactly.\nfunc Eq(a, b float64) bool {\n\treturn a == b\n}\n",
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "floateq") {
		t.Errorf("stdout missing the floateq finding:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing the finding count:\n%s", stderr.String())
	}
}

// TestExitTwoOnTypeError drives the driver over a module that does
// not type-check: the error is reported on stderr and the exit status
// is 2, so CI can tell "broken build" from "lint findings".
func TestExitTwoOnTypeError(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"internal/core/bad.go": "package core\n\nfunc broken() {\n\tundefinedIdent()\n}\n",
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d, want 2\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "undefinedIdent") {
		t.Errorf("stderr missing the type error:\n%s", stderr.String())
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, name := range lint.CheckNames() {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing check %q:\n%s", name, stdout.String())
		}
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks", "nosuchcheck"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown check: exit %d, want 2", code)
	}
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"-C", "/nonexistent-dir"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad module dir: exit %d, want 2", code)
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		rel, pat string
		want     bool
	}{
		{"internal/sim", "./...", true},
		{"internal/sim", ".", true},
		{"", "./...", true},
		{"internal/sim", "./internal/sim", true},
		{"internal/sim", "./internal/...", true},
		{"internal/simx", "./internal/sim/...", false},
		{"internal/sim/sub", "./internal/sim/...", true},
		{"internal/sim", "./internal/sched", false},
		{"cmd/qulint", "./cmd/...", true},
		{"internal/sim", "internal/sim", true},
	}
	for _, c := range cases {
		if got := matchPattern(c.rel, c.pat); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.rel, c.pat, got, c.want)
		}
	}
}

func TestFilterPackages(t *testing.T) {
	pkgs := []*lint.Package{{Rel: ""}, {Rel: "internal/sim"}, {Rel: "cmd/qulint"}}
	got := filterPackages(pkgs, []string{"./internal/..."})
	if len(got) != 1 || got[0].Rel != "internal/sim" {
		t.Errorf("filter ./internal/... = %v", rels(got))
	}
	if got := filterPackages(pkgs, nil); len(got) != 3 {
		t.Errorf("no patterns should keep all packages, got %v", rels(got))
	}
}

func rels(pkgs []*lint.Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.Rel)
	}
	return out
}
