package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestModuleIsClean is the smoke test the Makefile's lint target
// relies on: qulint over the real module must exit 0 with no output.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../..", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("qulint ./... = exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run wrote to stdout:\n%s", stdout.String())
	}
}

// TestJSONOutput filters to a single package and asserts the -json
// encoding is a well-formed (possibly empty) array.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../..", "-json", "-checks", "floateq", "./internal/fp"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	var findings []lint.Finding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 0 {
		t.Errorf("internal/fp should be floateq-clean, got %v", findings)
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, name := range lint.CheckNames() {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing check %q:\n%s", name, stdout.String())
		}
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks", "nosuchcheck"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown check: exit %d, want 2", code)
	}
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"-C", "/nonexistent-dir"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad module dir: exit %d, want 2", code)
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		rel, pat string
		want     bool
	}{
		{"internal/sim", "./...", true},
		{"internal/sim", ".", true},
		{"", "./...", true},
		{"internal/sim", "./internal/sim", true},
		{"internal/sim", "./internal/...", true},
		{"internal/simx", "./internal/sim/...", false},
		{"internal/sim/sub", "./internal/sim/...", true},
		{"internal/sim", "./internal/sched", false},
		{"cmd/qulint", "./cmd/...", true},
		{"internal/sim", "internal/sim", true},
	}
	for _, c := range cases {
		if got := matchPattern(c.rel, c.pat); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.rel, c.pat, got, c.want)
		}
	}
}

func TestFilterPackages(t *testing.T) {
	pkgs := []*lint.Package{{Rel: ""}, {Rel: "internal/sim"}, {Rel: "cmd/qulint"}}
	got := filterPackages(pkgs, []string{"./internal/..."})
	if len(got) != 1 || got[0].Rel != "internal/sim" {
		t.Errorf("filter ./internal/... = %v", rels(got))
	}
	if got := filterPackages(pkgs, nil); len(got) != 3 {
		t.Errorf("no patterns should keep all packages, got %v", rels(got))
	}
}

func rels(pkgs []*lint.Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.Rel)
	}
	return out
}
