// Command qulint runs the repository's domain-specific static checks
// (internal/lint) over every package in the module: determinism
// (norandglobal, nowallclock, maporder), numeric safety (floateq), and
// library/concurrency hygiene (noprint, guardedby).
//
// Usage:
//
//	qulint [-checks a,b,c] [-json] [-list] [pattern ...]
//
// Patterns are ./...-style path filters relative to the module root
// (default ./...). Findings print as file:line:col diagnostics (or a
// JSON array with -json); the exit status is 1 when any finding
// survives, 2 on usage or load errors. Suppress a finding with
// //lint:ignore <check> <reason> on or directly above the line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qulint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checksFlag := fs.String("checks", "", "comma-separated checks to run (default: all)")
	jsonFlag := fs.Bool("json", false, "emit findings as a JSON array")
	listFlag := fs.Bool("list", false, "list available checks and exit")
	dirFlag := fs.String("C", ".", "directory to resolve the module from")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listFlag {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-14s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	checks, err := lint.SelectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(stderr, "qulint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(*dirFlag)
	if err != nil {
		fmt.Fprintln(stderr, "qulint:", err)
		return 2
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "qulint:", err)
		return 2
	}
	pkgs = filterPackages(pkgs, fs.Args())
	findings := lint.Run(pkgs, checks)
	if *jsonFlag {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "qulint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "qulint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// filterPackages keeps packages matching any ./...-style pattern
// (resolved against the module root). No patterns, "." or "./..."
// match everything.
func filterPackages(pkgs []*lint.Package, patterns []string) []*lint.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var out []*lint.Package
	for _, p := range pkgs {
		for _, pat := range patterns {
			if matchPattern(p.Rel, pat) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// matchPattern implements the subset of go-tool pattern syntax the
// driver needs: ".", "./...", "./dir", and "./dir/...".
func matchPattern(rel, pat string) bool {
	pat = filepath.ToSlash(pat)
	pat = strings.TrimPrefix(pat, "./")
	if pat == "..." || pat == "." || pat == "" {
		return true
	}
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == prefix || strings.HasPrefix(rel, prefix+"/")
	}
	return rel == pat
}
