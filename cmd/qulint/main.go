// Command qulint runs the repository's domain-specific static checks
// (internal/lint) over every package in the module: determinism
// (norandglobal, nowallclock, maporder, detflow), numeric safety
// (floateq), library/concurrency hygiene (noprint, guardedby,
// lockorder, atomicmix), and cancellation plumbing (ctxflow). The
// interprocedural checks build a module-wide call graph, so the whole
// module is always loaded; patterns only filter which packages'
// findings are reported.
//
// Usage:
//
//	qulint [-checks a,b,c] [-json] [-list] [pattern ...]
//
// Patterns are ./...-style path filters relative to the module root
// (default ./...). Findings print as file:line:col diagnostics; -json
// emits an object {"findings": [...], "checks": [...],
// "suppressions": {...}} where each finding carries the one-line doc
// of its check and suppressions counts the //lint:ignore directives
// seen (total / used / unused). The exit status is 1 when any finding
// survives, 2 on usage, load, or type-check errors. Suppress a
// finding with //lint:ignore <check> <reason> on or directly above
// the line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonReport is the -json output shape.
type jsonReport struct {
	Findings     []lint.Finding        `json:"findings"`
	Checks       []jsonCheck           `json:"checks"`
	Suppressions lint.SuppressionStats `json:"suppressions"`
}

// jsonCheck names one selected check with its doc line.
type jsonCheck struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qulint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checksFlag := fs.String("checks", "", "comma-separated checks to run (default: all)")
	jsonFlag := fs.Bool("json", false, "emit a JSON report object")
	listFlag := fs.Bool("list", false, "list available checks and exit")
	dirFlag := fs.String("C", ".", "directory to resolve the module from")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listFlag {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-14s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	checks, err := lint.SelectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(stderr, "qulint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(*dirFlag)
	if err != nil {
		fmt.Fprintln(stderr, "qulint:", err)
		return 2
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "qulint:", err)
		return 2
	}
	// Type errors are a hard failure, distinct from findings: dataflow
	// over a broken type graph would be garbage, so report and bail
	// before any check runs.
	broken := false
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			fmt.Fprintf(stderr, "qulint: %s: %v\n", p.Rel, te)
			broken = true
		}
	}
	if broken {
		return 2
	}

	// The whole module always feeds Analyze (the interprocedural checks
	// need every function's summary); patterns restrict reporting only.
	patterns := fs.Args()
	include := func(p *lint.Package) bool { return matchesAny(p.Rel, patterns) }
	res := lint.Analyze(pkgs, checks, include)
	findings := res.Findings

	if *jsonFlag {
		report := jsonReport{
			Findings:     findings,
			Suppressions: res.Suppressions,
		}
		if report.Findings == nil {
			report.Findings = []lint.Finding{}
		}
		for _, c := range checks {
			report.Checks = append(report.Checks, jsonCheck{Name: c.Name, Doc: c.Doc})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "qulint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "qulint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// matchesAny reports whether rel matches any ./...-style pattern. No
// patterns match everything.
func matchesAny(rel string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, pat := range patterns {
		if matchPattern(rel, pat) {
			return true
		}
	}
	return false
}

// filterPackages keeps packages matching any ./...-style pattern
// (resolved against the module root). No patterns, "." or "./..."
// match everything.
func filterPackages(pkgs []*lint.Package, patterns []string) []*lint.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var out []*lint.Package
	for _, p := range pkgs {
		if matchesAny(p.Rel, patterns) {
			out = append(out, p)
		}
	}
	return out
}

// matchPattern implements the subset of go-tool pattern syntax the
// driver needs: ".", "./...", "./dir", and "./dir/...".
func matchPattern(rel, pat string) bool {
	pat = filepath.ToSlash(pat)
	pat = strings.TrimPrefix(pat, "./")
	if pat == "..." || pat == "." || pat == "" {
		return true
	}
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == prefix || strings.HasPrefix(rel, prefix+"/")
	}
	return rel == pat
}
