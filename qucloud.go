// Package qucloud is a Go reproduction of "QuCloud: A New Qubit Mapping
// Mechanism for Multi-programming Quantum Computing in Cloud
// Environment" (Liu & Dou, HPCA 2021). It maps multiple quantum
// programs onto one NISQ chip at once:
//
//   - CDAP partitions the chip's physical qubits among programs using an
//     error-aware community-detection hierarchy tree.
//   - X-SWAP routes all co-located programs jointly, allowing
//     inter-program SWAPs and prioritizing critical gates.
//   - An EPST-based scheduler batches queued jobs for multi-programming
//     only when the estimated fidelity loss stays under a threshold.
//
// This package is the public facade over internal/core (the compiler
// pipeline) plus the experiment drivers that regenerate every table and
// figure of the paper's evaluation. Typical use:
//
//	d := arch.IBMQ16(0)                    // a chip + calibration day
//	comp := qucloud.NewCompiler(d)
//	res, err := comp.Compile(progs, qucloud.CDAPXSwap)
//	psts, err := comp.Simulate(res, 8024, seed, sim.DefaultNoise())
package qucloud

import (
	"repro/internal/arch"
	"repro/internal/core"
)

// Strategy selects a compilation policy; see the constants below.
type Strategy = core.Strategy

// The six strategies of the paper's evaluation.
const (
	// Separate compiles and runs each program alone on the whole chip.
	Separate = core.Separate
	// SABRE merges all programs into one circuit compiled with plain SABRE.
	SABRE = core.SABRE
	// Baseline is FRP partitioning + noise-aware SABRE (Das et al.).
	Baseline = core.Baseline
	// CDAPXSwap is QuCloud: CDAP partitioning + X-SWAP routing.
	CDAPXSwap = core.CDAPXSwap
	// CDAPOnly ablates X-SWAP from QuCloud.
	CDAPOnly = core.CDAPOnly
	// XSwapOnly ablates CDAP from QuCloud.
	XSwapOnly = core.XSwapOnly
)

// Strategies lists all strategies in the paper's table order.
var Strategies = core.Strategies

// Compiler compiles multi-program workloads onto a device.
type Compiler = core.Compiler

// Result is a compiled workload.
type Result = core.Result

// NewCompiler returns a Compiler with the paper's defaults for the device.
func NewCompiler(d *arch.Device) *Compiler { return core.NewCompiler(d) }
